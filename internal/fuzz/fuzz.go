// Package fuzz generates randomized adversarial scenarios — correlated
// failures, gray failures, flash crowds, churn, capacity drift on random
// clustered topologies — and checks every run against the reproduction's
// free oracles:
//
//   - the runtime invariant checker (internal/invariant) rides the run:
//     flow conservation, dead-link silence, rate-vs-capacity bounds,
//     drop accounting;
//   - the determinism contract: the same (scenario, seed) pair must
//     yield a bit-identical trajectory at shards=1 and shards=4, so the
//     full observable signature (transitions, failures, per-flow
//     delivery, drops) is compared across worker counts;
//   - cross-scheme sanity: a second scheme runs the same scenario and
//     its aggregates must stay finite, non-negative and physical.
//
// On failure the scenario is greedily minimized (drop events,
// processes, flows one at a time while the same check keeps failing)
// and written as a reproducer JSON through the strict scenario schema,
// so `empower-scenario` and the tests can replay it.
package fuzz

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// traceRing sizes the per-domain flight-recorder ring used when a
// reproducer is re-run for the trace dump. Fuzz scenarios are short
// (≤ ~20 emulated seconds), so 4096 records per domain keeps the whole
// failing trajectory, not just its tail.
const traceRing = 4096

// Seed domains, offset away from every stream the runners use (runner
// replications use the plain index, scenario timelines 1_000_000+run,
// topology realizations 2_000_000+run, emulation domains 3_000_000+d).
const (
	seedGenerate = 500_000 // scenario generation, per fuzz run
	seedTimeline = 550_000 // process expansion, per fuzz run
	seedEmu      = 600_000 // emulation RNG, per fuzz run
)

// Inject selects a deliberate defect, used to prove the oracles catch
// real violations (the checker self-test and the -inject CLI flag).
type Inject string

const (
	// InjectNone runs clean.
	InjectNone Inject = ""
	// InjectCounter corrupts a relay conservation counter mid-run on
	// the invariant arm — the checker must flag flow-conservation.
	InjectCounter Inject = "counter"
	// InjectSeed perturbs the comparison arm's seeds — the differential
	// oracle must flag the trajectory divergence.
	InjectSeed Inject = "seed"
)

// Config tunes a fuzzing session.
type Config struct {
	// Runs is the number of randomized scenarios (default 25).
	Runs int
	// Seed is the base seed; every run derives its streams from it.
	Seed int64
	// OutDir receives reproducer JSONs (default "fuzz-failures").
	OutDir string
	// MaxDuration caps the generated scenario length in emulated
	// seconds (default 12; the floor is 6).
	MaxDuration float64
	// Inject seeds a deliberate defect (see Inject).
	Inject Inject
	// MinimizeBudget caps the re-runs spent shrinking a failing
	// scenario (default 48; 0 uses the default, negative disables
	// minimization).
	MinimizeBudget int
	// Log, when set, receives progress lines.
	Log func(format string, args ...interface{})
}

func (c Config) runs() int {
	if c.Runs <= 0 {
		return 25
	}
	return c.Runs
}

func (c Config) outDir() string {
	if c.OutDir == "" {
		return "fuzz-failures"
	}
	return c.OutDir
}

func (c Config) maxDuration() float64 {
	if c.MaxDuration < 6 {
		return 12
	}
	return c.MaxDuration
}

func (c Config) minimizeBudget() int {
	if c.MinimizeBudget == 0 {
		return 48
	}
	return c.MinimizeBudget
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// Failure describes the first failing run of a session.
type Failure struct {
	Run    int    `json:"run"`
	Check  string `json:"check"`
	Detail string `json:"detail"`
	// Repro is the minimized reproducer path ("" if writing failed —
	// Detail then explains).
	Repro string `json:"repro,omitempty"`
	// Trace is the Chrome trace-event JSON dumped from the flight
	// recorder while replaying the minimized reproducer ("" if the
	// replay or the write failed).
	Trace string `json:"trace,omitempty"`
	// TimelineSeed and EmuSeed replay the failing run against Repro.
	TimelineSeed int64 `json:"timeline_seed"`
	EmuSeed      int64 `json:"emu_seed"`
}

// Result summarizes a session: how many scenarios ran clean, and the
// first failure (nil for an entirely clean session — the session stops
// at the first failure, like go test -run fuzzing).
type Result struct {
	Clean   int      `json:"clean"`
	Failure *Failure `json:"failure,omitempty"`
}

// Run executes the session.
func Run(cfg Config) (Result, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run with cancellation: the session checks ctx between
// scenarios (one scenario's checks are not preempted mid-run) and
// returns ctx.Err() with the partial result when interrupted.
func RunCtx(ctx context.Context, cfg Config) (Result, error) {
	var res Result
	for i := 0; i < cfg.runs(); i++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		rng := stats.NewRand(stats.SplitSeed(cfg.Seed, seedGenerate+i))
		sc := Generate(rng, cfg.maxDuration())
		sc.Name = fmt.Sprintf("fuzz-%d", i)
		scSeed := stats.SplitSeed(cfg.Seed, seedTimeline+i)
		emSeed := stats.SplitSeed(cfg.Seed, seedEmu+i)
		fail, err := check(sc, scSeed, emSeed, cfg.Inject)
		if err != nil {
			return res, fmt.Errorf("fuzz: run %d: %w", i, err)
		}
		if fail == nil {
			res.Clean++
			cfg.logf("run %d ok (%s, %d nodes, %d events, %d processes)",
				i, sc.Name, len(sc.Topology.Nodes), len(sc.Events), len(sc.Processes))
			continue
		}
		fail.Run = i
		fail.TimelineSeed = scSeed
		fail.EmuSeed = emSeed
		cfg.logf("run %d FAILED %s: %s", i, fail.Check, fail.Detail)
		sc = minimize(sc, scSeed, emSeed, cfg, fail.Check)
		if path, err := writeRepro(sc, cfg.outDir(), i); err != nil {
			fail.Detail += fmt.Sprintf(" (reproducer not written: %v)", err)
		} else {
			fail.Repro = path
			cfg.logf("reproducer: %s", path)
			if trace, err := dumpTrace(sc, scSeed, emSeed, path+".trace.json"); err != nil {
				cfg.logf("flight-recorder trace not written: %v", err)
			} else {
				fail.Trace = trace
				cfg.logf("flight-recorder trace: %s", trace)
			}
		}
		res.Failure = fail
		return res, nil
	}
	return res, nil
}

// check runs one scenario through all oracles. A nil Failure means the
// scenario passed; a non-nil error means the harness itself broke (a
// generated scenario that cannot bind is a generator bug, not a finding).
func check(sc *scenario.Scenario, scSeed, emSeed int64, inject Inject) (*Failure, error) {
	empower, err := core.ParseScheme("EMPoWER")
	if err != nil {
		return nil, err
	}
	// Oracle 1+2: the invariant arm (shards=1, checker attached).
	a, err := runArm(sc, empower, scSeed, emSeed, 1, true, inject == InjectCounter)
	if err != nil {
		return nil, err
	}
	if len(a.violations) > 0 {
		v := a.violations[0]
		return &Failure{Check: "invariant:" + v.Check, Detail: v.Detail}, nil
	}
	if f := sanity(sc, "EMPoWER", a); f != nil {
		return f, nil
	}
	// Oracle 3: the differential arm (shards=4, same seeds) must
	// reproduce the exact trajectory signature.
	bScSeed, bEmSeed := scSeed, emSeed
	if inject == InjectSeed {
		bScSeed, bEmSeed = scSeed+1, emSeed+1
	}
	b, err := runArm(sc, empower, bScSeed, bEmSeed, 4, false, false)
	if err != nil {
		return nil, err
	}
	if a.sig != b.sig {
		return &Failure{Check: "differential", Detail: sigDiff(a.sig, b.sig)}, nil
	}
	// Oracle 4: a contrast scheme on the same scenario stays physical.
	sp, err := core.ParseScheme("SP")
	if err != nil {
		return nil, err
	}
	c, err := runArm(sc, sp, scSeed, emSeed, 1, true, false)
	if err != nil {
		return nil, err
	}
	if len(c.violations) > 0 {
		v := c.violations[0]
		return &Failure{Check: "invariant:" + v.Check, Detail: "scheme SP: " + v.Detail}, nil
	}
	if f := sanity(sc, "SP", c); f != nil {
		return f, nil
	}
	return nil, nil
}

// armResult is one run's observable outcome.
type armResult struct {
	sig        string
	violations []violation
	goodput    float64
	capSum     float64
}

// violation narrows invariant.Violation to what the fuzzer reports
// (keeping the fuzz package decoupled from the checker's type).
type violation struct {
	Check  string
	Detail string
}

func (v violation) String() string { return v.Check + ": " + v.Detail }

// runArm binds and runs the scenario under one (scheme, shards)
// configuration and extracts the full observable signature.
func runArm(sc *scenario.Scenario, scheme core.Scheme, scSeed, emSeed int64, shards int, invariants, injectCounter bool) (*armResult, error) {
	net, err := sc.Topology.BuildView(scSeed, scheme.View())
	if err != nil {
		return nil, err
	}
	em := node.NewEmulation(net, node.Config{
		Delta: 0.05, DisableCC: !scheme.CC(), Estimation: true,
		ExpectedDuration: sc.Duration, Shards: shards,
	}, emSeed)
	opts := scenario.Options{
		Routes: func(n *graph.Network, src, dst graph.NodeID) []graph.Path {
			return core.RoutesFor(scheme, n, src, dst)
		},
		ManageRoutes: scheme.CC(),
		Invariants:   invariants,
	}
	rt, err := scenario.Bind(em, sc, scSeed, opts)
	if err != nil {
		return nil, err
	}
	if injectCounter {
		// Corrupt a relay counter mid-run, on the owning domain's
		// engine. Nothing but the invariant checker reads the counter,
		// so the trajectory is untouched — exactly the class of silent
		// corruption the checker exists to catch.
		n := graph.NodeID(0)
		d := em.Domain(em.NodeDomain(n))
		d.Engine.At(sc.Duration/2, func() { d.Agents[n].Forwarded++ })
	}
	rt.Run()

	res := &armResult{goodput: rt.AggregateGoodput()}
	for _, v := range rt.Violations() {
		res.violations = append(res.violations, violation{
			Check:  v.Check,
			Detail: fmt.Sprintf("t=%.3f dom=%d %s", v.At, v.Domain, v.Detail),
		})
	}
	for l := 0; l < net.NumLinks(); l++ {
		res.capSum += net.Link(graph.LinkID(l)).Capacity
	}
	var b strings.Builder
	for _, tr := range rt.Transitions {
		fmt.Fprintf(&b, "T %.9f %s %d %.9f %.9f\n", tr.At, tr.Kind, tr.Link, tr.Capacity, tr.Loss)
	}
	for _, f := range rt.Failures {
		fmt.Fprintf(&b, "F %s %v %.9f %.9f\n", f.Flow, f.Links, f.At, f.RecoveredAt)
	}
	for _, name := range rt.FlowNames() {
		rec := rt.Flow(name)
		sink := em.Agent(rec.Dst).PeekSink(rec.Src, rec.Flow.ID)
		if sink == nil {
			fmt.Fprintf(&b, "f %s -\n", name)
			continue
		}
		fmt.Fprintf(&b, "f %s %d %d %d\n", name, sink.TotalPackets, sink.TotalBytes, sink.Lost)
	}
	drops := rt.DropsByReason()
	for _, reason := range []string{"dead-link", "queue-overflow", "link-down", "channel-loss"} {
		fmt.Fprintf(&b, "d %s %d\n", reason, drops[reason])
	}
	fmt.Fprintf(&b, "r %d s %d u %d g %.9f\n",
		rt.Reroutes(), len(rt.SkippedFlows), len(rt.Unresolved), res.goodput)
	res.sig = b.String()
	return res, nil
}

// sanity checks that an arm's aggregates are physical: finite,
// non-negative, and below the network's gross delivery ceiling (the
// summed link capacities, doubled for slack — goodput is averaged over
// the duration, so nothing real gets near it).
func sanity(sc *scenario.Scenario, scheme string, a *armResult) *Failure {
	if math.IsNaN(a.goodput) || math.IsInf(a.goodput, 0) || a.goodput < 0 {
		return &Failure{Check: "sanity", Detail: fmt.Sprintf("scheme %s: aggregate goodput %v", scheme, a.goodput)}
	}
	if a.goodput > 2*a.capSum {
		return &Failure{Check: "sanity", Detail: fmt.Sprintf(
			"scheme %s: aggregate goodput %.2f Mbps exceeds 2x total capacity %.2f", scheme, a.goodput, a.capSum)}
	}
	return nil
}

// sigDiff reports the first line where two trajectory signatures
// diverge.
func sigDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: shards=1 %q vs shards=4 %q", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("signature lengths differ: %d vs %d lines", len(al), len(bl))
}

// minimize greedily shrinks the failing scenario: drop one event,
// process, flow or group at a time, keep the removal whenever the same
// check still fails, stop when a full pass removes nothing or the
// re-run budget is spent.
func minimize(sc *scenario.Scenario, scSeed, emSeed int64, cfg Config, check0 string) *scenario.Scenario {
	budget := cfg.minimizeBudget()
	if budget < 0 {
		return sc
	}
	stillFails := func(cand *scenario.Scenario) bool {
		if budget <= 0 || cand.Validate() != nil {
			return false
		}
		budget--
		fail, err := check(cand, scSeed, emSeed, cfg.Inject)
		return err == nil && fail != nil && fail.Check == check0
	}
	cur := sc
	for improved := true; improved && budget > 0; {
		improved = false
		for i := 0; i < len(cur.Events); i++ {
			cand := clone(cur)
			cand.Events = append(cand.Events[:i:i], cand.Events[i+1:]...)
			if stillFails(cand) {
				cur, improved = cand, true
				i--
			}
		}
		for i := 0; i < len(cur.Processes); i++ {
			cand := clone(cur)
			cand.Processes = append(cand.Processes[:i:i], cand.Processes[i+1:]...)
			if stillFails(cand) {
				cur, improved = cand, true
				i--
			}
		}
		for i := 0; i < len(cur.Flows); i++ {
			cand := clone(cur)
			cand.Flows = append(cand.Flows[:i:i], cand.Flows[i+1:]...)
			if stillFails(cand) {
				cur, improved = cand, true
				i--
			}
		}
		for i := 0; i < len(cur.Groups); i++ {
			// Validate rejects dangling group references, so a still-used
			// group simply fails the candidate and stays.
			cand := clone(cur)
			cand.Groups = append(cand.Groups[:i:i], cand.Groups[i+1:]...)
			if stillFails(cand) {
				cur, improved = cand, true
				i--
			}
		}
	}
	return cur
}

// clone copies the scenario one level deep — exactly the slices
// minimize edits.
func clone(sc *scenario.Scenario) *scenario.Scenario {
	out := *sc
	out.Flows = append([]scenario.FlowSpec(nil), sc.Flows...)
	out.Events = append([]scenario.Event(nil), sc.Events...)
	out.Processes = append([]scenario.Process(nil), sc.Processes...)
	out.Groups = append([]scenario.GroupSpec(nil), sc.Groups...)
	return &out
}

// writeRepro saves the scenario and round-trips it through the strict
// loader, so the reproducer is guaranteed replayable.
func writeRepro(sc *scenario.Scenario, dir string, run int) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("repro-run%d.json", run))
	if err := sc.Save(path); err != nil {
		return "", err
	}
	if _, err := scenario.Load(path); err != nil {
		return "", fmt.Errorf("reproducer does not reload: %w", err)
	}
	return path, nil
}

// dumpTrace replays the minimized reproducer on the invariant arm's
// configuration with the flight recorder attached and writes the
// per-domain records as Chrome trace-event JSON next to the reproducer,
// so the failing trajectory opens directly in Perfetto. The recorder is
// purely observational, so the replay follows the exact trajectory the
// oracles flagged.
func dumpTrace(sc *scenario.Scenario, scSeed, emSeed int64, path string) (string, error) {
	empower, err := core.ParseScheme("EMPoWER")
	if err != nil {
		return "", err
	}
	net, err := sc.Topology.BuildView(scSeed, empower.View())
	if err != nil {
		return "", err
	}
	em := node.NewEmulation(net, node.Config{
		Delta: 0.05, DisableCC: !empower.CC(), Estimation: true,
		ExpectedDuration: sc.Duration, Shards: 1, Recorder: traceRing,
	}, emSeed)
	opts := scenario.Options{
		Routes: func(n *graph.Network, src, dst graph.NodeID) []graph.Path {
			return core.RoutesFor(empower, n, src, dst)
		},
		ManageRoutes: empower.CC(),
		Invariants:   true,
	}
	rt, err := scenario.Bind(em, sc, scSeed, opts)
	if err != nil {
		return "", err
	}
	rt.Run()
	domains := make([][]obs.Record, em.NumDomains())
	for d := range domains {
		domains[d] = rt.RecorderTail(d, traceRing)
	}
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := obs.WriteChromeTrace(f, domains); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return path, nil
}

// Generate draws one randomized adversarial scenario: a clustered
// custom topology (spatially separated clusters fall into independent
// interference domains, so the sharded engine has real work), scripted
// flows, correlated failure groups, an adversarial event timeline, and
// stochastic processes covering every kind the engine knows.
func Generate(rng *rand.Rand, maxDuration float64) *scenario.Scenario {
	duration := 6 + rng.Float64()*(maxDuration-6)
	sc := scenario.New("fuzz", duration)

	clusters := 1 + rng.Intn(3)
	topo := &scenario.TopologySpec{
		Kind:        "custom",
		SenseRadius: map[string]float64{"plc": 100, "wifi": 100},
	}
	type link struct {
		spec scenario.LinkSpec
		ref  scenario.LinkRef
	}
	var (
		nodes [][]string // per cluster
		links [][]link   // per cluster
	)
	addLink := func(c int, from, to, tech string, capacity float64) {
		spec := scenario.LinkSpec{From: from, To: to, Tech: tech, Capacity: capacity}
		topo.Links = append(topo.Links, spec)
		links[c] = append(links[c], link{
			spec: spec,
			ref:  scenario.LinkRef{From: from, To: to, Tech: tech},
		})
	}
	for c := 0; c < clusters; c++ {
		n := 2 + rng.Intn(3)
		var names []string
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("n%d_%d", c, i)
			names = append(names, name)
			topo.Nodes = append(topo.Nodes, scenario.NodeSpec{
				Name:  name,
				X:     float64(c)*1000 + rng.Float64()*30,
				Y:     rng.Float64()*30 - 15,
				Techs: []string{"plc", "wifi"},
			})
		}
		nodes = append(nodes, names)
		links = append(links, nil)
		// A ring of PLC links, most pairs doubled with a WiFi link —
		// the hybrid-multipath structure the paper's schemes differ on.
		pairs := n - 1
		if n > 2 {
			pairs = n
		}
		for i := 0; i < pairs; i++ {
			from, to := names[i], names[(i+1)%n]
			addLink(c, from, to, "plc", 20+rng.Float64()*40)
			if rng.Float64() < 0.7 {
				addLink(c, from, to, "wifi", 20+rng.Float64()*40)
			}
		}
	}
	sc.Topology = topo

	randomLink := func(c int) scenario.LinkRef { return links[c][rng.Intn(len(links[c]))].ref }
	clamp := func(t float64) float64 {
		if t >= duration {
			return duration - 0.5
		}
		return t
	}
	for c := 0; c < clusters; c++ {
		// A long-lived flow per cluster keeps traffic on the links the
		// events attack.
		if rng.Float64() < 0.85 && len(nodes[c]) >= 2 {
			i := rng.Intn(len(nodes[c]))
			j := rng.Intn(len(nodes[c]) - 1)
			if j >= i {
				j++
			}
			sc.AddFlow(scenario.FlowSpec{
				Name:  fmt.Sprintf("f%d", c),
				Src:   nodes[c][i],
				Dst:   nodes[c][j],
				Start: rng.Float64() * 2,
			})
		}
		// Correlated failure group: a subset of the cluster's links
		// dying atomically (the shared PLC phase of §6.1's appliance).
		if rng.Float64() < 0.6 {
			name := fmt.Sprintf("g%d", c)
			count := 1 + rng.Intn(2)
			var refs []scenario.LinkRef
			for k := 0; k < count; k++ {
				refs = append(refs, randomLink(c))
			}
			sc.Group(name, refs...)
			at := 2 + rng.Float64()*(duration-4)
			sc.FailGroup(at, name)
			if rng.Float64() < 0.8 {
				sc.RecoverGroup(clamp(at+0.5+rng.Float64()*2.5), name)
			}
		}
		// Clean failures, gray failures, capacity downgrades, churn.
		if rng.Float64() < 0.5 {
			ref := randomLink(c)
			at := 2 + rng.Float64()*(duration-4)
			sc.FailLink(at, ref)
			sc.RecoverLink(clamp(at+0.5+rng.Float64()*2), ref)
		}
		if rng.Float64() < 0.5 {
			ref := randomLink(c)
			at := 1 + rng.Float64()*(duration-3)
			sc.SetLinkLoss(at, ref, 0.05+rng.Float64()*0.35)
			if rng.Float64() < 0.7 {
				sc.SetLinkLoss(clamp(at+1+rng.Float64()*2), ref, 0)
			}
		}
		if rng.Float64() < 0.3 {
			l := links[c][rng.Intn(len(links[c]))]
			sc.SetLinkCapacity(1+rng.Float64()*(duration-2), l.ref, l.spec.Capacity*(0.3+rng.Float64()*0.6))
		}
		if rng.Float64() < 0.25 && len(nodes[c]) > 2 {
			n := nodes[c][rng.Intn(len(nodes[c]))]
			at := 2 + rng.Float64()*(duration-4)
			sc.NodeLeave(at, n)
			sc.NodeJoin(clamp(at+1+rng.Float64()*2), n)
		}
		// Stochastic processes, one of each kind at most per cluster.
		if rng.Float64() < 0.4 {
			sc.Flap(randomLink(c), 2+rng.Float64()*2, 0.5+rng.Float64()*2, 2+rng.Float64()*3)
		}
		if rng.Float64() < 0.4 {
			sc.GrayLoss(randomLink(c), 0.1+rng.Float64()*0.4, 2+rng.Float64()*2, 0.5+rng.Float64()*2, 2+rng.Float64()*3)
		}
		if rng.Float64() < 0.3 {
			sc.Drift(randomLink(c), 0.5+rng.Float64(), 0.1+rng.Float64()*0.2, 0.3, 1.3)
		}
	}
	// Network-wide load processes draw random pairs (cross-cluster
	// draws resolve to routeless flows and count as skipped arrivals —
	// itself a determinism-sensitive code path worth fuzzing).
	if rng.Float64() < 0.5 {
		burstRate := 0.0
		if rng.Float64() < 0.5 {
			burstRate = 0.1 + rng.Float64()*0.2
		}
		sc.FlashCrowd(1+rng.Float64()*2, burstRate, 2+rng.Intn(3), 0.5+rng.Float64()*1.5, 2+rng.Float64()*2, "", "")
	}
	if rng.Float64() < 0.3 {
		sc.PoissonFlows(0.2+rng.Float64()*0.3, 2+rng.Float64()*2, "", "")
	}
	// The differential oracle leans on the timeline expansion streams;
	// guarantee at least one stochastic process and one flow exist.
	if len(sc.Processes) == 0 {
		sc.Flap(randomLink(0), 2, 1, 3)
	}
	if len(sc.Flows) == 0 {
		sc.AddFlow(scenario.FlowSpec{Name: "f0", Src: nodes[0][0], Dst: nodes[0][1], Start: 0.5})
	}
	return sc
}
