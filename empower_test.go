package empower

import (
	"math"
	"math/rand"
	"testing"
)

// figure1Net builds the paper's running example through the public API.
func figure1Net() (*Network, NodeID, NodeID) {
	b := NewNetworkBuilder(nil)
	a := b.AddNode("gateway", 0, 0, TechPLC, TechWiFi)
	ext := b.AddNode("extender", 10, 0, TechPLC, TechWiFi)
	c := b.AddNode("laptop", 20, 0, TechWiFi)
	b.AddDuplex(a, ext, TechPLC, 10)
	b.AddDuplex(a, ext, TechWiFi, 15)
	b.AddDuplex(ext, c, TechWiFi, 30)
	return b.Build(), a, c
}

// TestFigure1Scenario reproduces the paper's Figure 1 example end to end
// through the public API: the multipath combination carries 10 Mbps on
// the hybrid route plus 6.67 Mbps on the two-hop WiFi route.
func TestFigure1Scenario(t *testing.T) {
	net, a, c := figure1Net()
	comb := FindCombination(net, a, c, DefaultRoutingConfig())
	if math.Abs(comb.Total-50.0/3) > 1e-6 {
		t.Fatalf("combination total = %v, want 16.667", comb.Total)
	}
	if len(comb.Paths) != 2 {
		t.Fatalf("combination paths = %d, want 2", len(comb.Paths))
	}
	// The controller converges to the same split.
	var routes []ControllerRoute
	for _, p := range comb.Paths {
		routes = append(routes, ControllerRoute{Links: p, Flow: 0})
	}
	ctrl, err := NewController(net, routes, ControllerOptions{Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Run(6000)
	if got := ctrl.FlowRate(0); math.Abs(got-50.0/3) > 1.2 {
		t.Errorf("controller total = %v, want ~16.67", got)
	}
	// And the centralized optimum agrees.
	opt, err := OptimalRates(net, [][2]NodeID{{a, c}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt[0]-50.0/3) > 0.5 {
		t.Errorf("optimal = %v, want 16.67", opt[0])
	}
}

func TestPublicSinglePathAndRate(t *testing.T) {
	net, a, c := figure1Net()
	p := FindSinglePath(net, a, c, DefaultRoutingConfig())
	if p == nil {
		t.Fatal("no path")
	}
	if r := PathRate(net, p); math.Abs(r-10) > 1e-9 {
		t.Errorf("R(P) = %v, want 10", r)
	}
}

func TestPublicEmulation(t *testing.T) {
	net, a, c := figure1Net()
	em := NewEmulation(net, EmulationConfig{}, 1)
	fl, err := em.AddFlow(FlowSpec{
		Src: a, Dst: c,
		Routes: FindRoutes(net, a, c, DefaultRoutingConfig()),
		Kind:   TrafficSaturated,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	em.Run(30)
	if fl.TotalRate() < 10 {
		t.Errorf("emulated rate %.2f, want > 10 (multipath gain)", fl.TotalRate())
	}
}

func TestPublicTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if n := len(Residential(rng, TopologyConfig{}).Nodes); n != 10 {
		t.Errorf("residential nodes = %d", n)
	}
	if n := len(Enterprise(rng, TopologyConfig{}).Nodes); n != 20 {
		t.Errorf("enterprise nodes = %d", n)
	}
	inst := Testbed(rng, TopologyConfig{})
	if n := len(inst.Nodes); n != 22 {
		t.Errorf("testbed nodes = %d", n)
	}
	net := inst.Build(ViewHybrid)
	if net.NumLinks() == 0 {
		t.Error("testbed has no links")
	}
}

func TestConservativeBelowOptimal(t *testing.T) {
	net, a, c := figure1Net()
	opt, _ := OptimalRates(net, [][2]NodeID{{a, c}})
	cons, _ := ConservativeOptimalRates(net, [][2]NodeID{{a, c}})
	if cons[0] > opt[0]+0.5 {
		t.Errorf("conservative %v exceeds optimal %v", cons[0], opt[0])
	}
}
