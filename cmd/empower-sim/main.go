// Command empower-sim regenerates the simulation figures of §5 (Figures
// 4-7 and the convergence comparison) over randomly generated residential
// and enterprise topologies.
//
// Usage:
//
//	empower-sim -fig 4 -topo residential -runs 1000
//	empower-sim -fig all -runs 200
//	empower-sim -fig convergence
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 4, 5, 6, 7, convergence, all")
	topo := flag.String("topo", "both", "topology: residential, enterprise, both")
	runs := flag.Int("runs", 200, "random instances per figure (paper: 1000)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	slots := flag.Int("slots", 0, "controller slots per run (default 4000)")
	out := flag.String("out", "", "directory for plottable TSV data files (optional)")
	flag.Parse()

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "empower-sim:", err)
			os.Exit(1)
		}
	}

	cfg := experiments.SimConfig{Runs: *runs, Seed: *seed, Core: core.Options{Slots: *slots}}

	var topos []experiments.Topo
	switch strings.ToLower(*topo) {
	case "residential":
		topos = []experiments.Topo{experiments.TopoResidential}
	case "enterprise":
		topos = []experiments.Topo{experiments.TopoEnterprise}
	case "both":
		topos = []experiments.Topo{experiments.TopoResidential, experiments.TopoEnterprise}
	default:
		fmt.Fprintf(os.Stderr, "unknown -topo %q\n", *topo)
		os.Exit(2)
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }

	for _, t := range topos {
		if want("4") || want("5") {
			f4 := experiments.Figure4(t, cfg)
			if want("4") {
				fmt.Println(f4.Render())
				for scheme, xs := range f4.Samples {
					dumpCDF(*out, fmt.Sprintf("fig4-%s-%s.tsv", t, scheme), xs)
				}
			}
			if want("5") {
				f5 := experiments.Figure5(f4)
				fmt.Println(f5.Render())
				dumpCDF(*out, fmt.Sprintf("fig5-%s.tsv", t), f5.Ratios)
			}
		}
		if want("6") {
			f6 := experiments.Figure6(t, cfg)
			fmt.Println(f6.Render())
			for name, xs := range f6.Ratios {
				dumpCDF(*out, fmt.Sprintf("fig6-%s-%s.tsv", t, slug(name)), xs)
			}
		}
		if want("7") {
			f7 := experiments.Figure7(t, cfg)
			fmt.Println(f7.Render())
			for name, xs := range f7.Ratios {
				dumpCDF(*out, fmt.Sprintf("fig7-%s-%s.tsv", t, slug(name)), xs)
			}
		}
		if want("convergence") {
			fmt.Println(experiments.Convergence(t, cfg).Render())
		}
	}
	if *fig != "all" && !oneOf(*fig, "4", "5", "6", "7", "convergence") {
		fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
		os.Exit(2)
	}
}

// dumpCDF writes a sample set's CDF to dir/name when -out is set.
func dumpCDF(dir, name string, xs []float64) {
	if dir == "" || len(xs) == 0 {
		return
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fmt.Fprintln(os.Stderr, "empower-sim:", err)
		return
	}
	defer f.Close()
	if _, err := trace.WriteCDF(f, xs, 200); err != nil {
		fmt.Fprintln(os.Stderr, "empower-sim:", err)
	}
}

// slug makes a scheme name filesystem-friendly.
func slug(s string) string {
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, " ", "-")
	return strings.ReplaceAll(s, "/", "")
}

func oneOf(s string, opts ...string) bool {
	for _, o := range opts {
		if s == o {
			return true
		}
	}
	return false
}
