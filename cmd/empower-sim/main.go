// Command empower-sim regenerates the simulation figures of §5 (Figures
// 4-7 and the convergence comparison) over randomly generated residential
// and enterprise topologies.
//
// The Monte-Carlo replications run on the deterministic parallel runner
// (internal/runner): -parallel bounds the worker pool (default: all
// cores) and never changes the numbers, only the wall-clock time; the
// same -seed yields bit-identical figures at any worker count.
//
// Flags:
//
//	-fig 4|5|6|7|convergence|all   figure to regenerate
//	-topo residential|enterprise|both
//	-runs N        random instances per figure (paper: 1000)
//	-seed N        base RNG seed
//	-parallel N    worker pool size (<= 0: GOMAXPROCS)
//	-json          emit one JSON object per figure on stdout instead of text
//	-progress      live progress line (done/total, reps/sec, ETA) on stderr
//	-out DIR       also write plottable TSV CDF files
//	-slots N       controller slots per run (default 4000)
//	-metrics target  publish Prometheus snapshots of the sweep's runner
//	               throughput and worker utilization: a file path is
//	               rewritten every 2 s, ":8080" / "host:port" serves
//	               /metrics over HTTP
//	-pprof addr    serve net/http/pprof on addr (e.g. ":6060")
//
// The observability flags are purely observational: figure output stays
// byte-identical with them on or off at the same seed and worker count.
//
// Usage:
//
//	empower-sim -fig 4 -topo residential -runs 1000 -parallel 8
//	empower-sim -fig all -runs 200 -json
//	empower-sim -fig convergence
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/trace"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 4, 5, 6, 7, convergence, all")
	topo := flag.String("topo", "both", "topology: residential, enterprise, both")
	runs := flag.Int("runs", 200, "random instances per figure (paper: 1000)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	parallel := flag.Int("parallel", 0, "replication workers (<= 0: GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit figures as JSON objects on stdout")
	progress := flag.Bool("progress", false, "report sweep progress on stderr")
	slots := flag.Int("slots", 0, "controller slots per run (default 4000)")
	out := flag.String("out", "", "directory for plottable TSV data files (optional)")
	metrics := flag.String("metrics", "", "Prometheus snapshots: file path, or :port / host:port to serve /metrics")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address")
	flag.Parse()

	if *fig != "all" && !oneOf(*fig, "4", "5", "6", "7", "convergence") {
		fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
		os.Exit(2)
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "empower-sim:", err)
			os.Exit(1)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := experiments.SimConfig{
		Runs: *runs, Seed: *seed, Core: core.Options{Slots: *slots},
		Parallel: *parallel,
	}

	if *pprofAddr != "" {
		fail(obs.ServePprof(*pprofAddr))
	}
	if *metrics != "" {
		// The simulation figures run flow-level solves, not packet
		// emulations, so the snapshots carry the runner series only:
		// replications completed, completion rate, worker utilization.
		agg := obs.NewAggregator()
		emitter, err := obs.StartEmitter(*metrics, agg, 0)
		fail(err)
		defer emitter.Close()
		rs := obs.NewRunnerStats(runner.PoolSize(*parallel))
		cfg.JobTime = func(d time.Duration) {
			rs.JobTime(d)
			agg.With(rs.Sample)
		}
	}

	var topos []experiments.Topo
	switch strings.ToLower(*topo) {
	case "residential":
		topos = []experiments.Topo{experiments.TopoResidential}
	case "enterprise":
		topos = []experiments.Topo{experiments.TopoEnterprise}
	case "both":
		topos = []experiments.Topo{experiments.TopoResidential, experiments.TopoEnterprise}
	default:
		fmt.Fprintf(os.Stderr, "unknown -topo %q\n", *topo)
		os.Exit(2)
	}

	var line *obs.ProgressLine

	enc := json.NewEncoder(os.Stdout)
	// emit prints one figure in the selected output mode. The JSON
	// envelope names the figure and topology so streams of objects stay
	// self-describing.
	emit := func(figure string, t fmt.Stringer, result any, render func() string) {
		line.Finish()
		if *jsonOut {
			envelope := struct {
				Figure string `json:"figure"`
				Topo   string `json:"topo,omitempty"`
				Seed   int64  `json:"seed"`
				Result any    `json:"result"`
			}{Figure: figure, Seed: *seed, Result: result}
			if t != nil {
				envelope.Topo = t.String()
			}
			if err := enc.Encode(envelope); err != nil {
				fail(err)
			}
			return
		}
		fmt.Println(render())
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }

	for _, t := range topos {
		tcfg := cfg
		if *progress {
			line = obs.NewProgressLine(os.Stderr, t.String())
			tcfg.Progress = line.Update
		}
		if want("4") || want("5") {
			f4, err := experiments.Figure4Ctx(ctx, t, tcfg)
			fail(err)
			if want("4") {
				emit("4", t, f4, f4.Render)
				for scheme, xs := range f4.Samples {
					dumpCDF(*out, fmt.Sprintf("fig4-%s-%s.tsv", t, slug(scheme.String())), xs)
				}
			}
			if want("5") {
				f5 := experiments.Figure5(f4)
				emit("5", t, f5, f5.Render)
				dumpCDF(*out, fmt.Sprintf("fig5-%s.tsv", t), f5.Ratios)
			}
		}
		if want("6") {
			f6, err := experiments.Figure6Ctx(ctx, t, tcfg)
			fail(err)
			emit("6", t, f6, f6.Render)
			for name, xs := range f6.Ratios {
				dumpCDF(*out, fmt.Sprintf("fig6-%s-%s.tsv", t, slug(name)), xs)
			}
		}
		if want("7") {
			f7, err := experiments.Figure7Ctx(ctx, t, tcfg)
			fail(err)
			emit("7", t, f7, f7.Render)
			for name, xs := range f7.Ratios {
				dumpCDF(*out, fmt.Sprintf("fig7-%s-%s.tsv", t, slug(name)), xs)
			}
		}
		if want("convergence") {
			cv, err := experiments.ConvergenceCtx(ctx, t, tcfg)
			fail(err)
			emit("convergence", t, cv, cv.Render)
		}
	}
}

func fail(err error) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "empower-sim:", err)
	// Interruption (SIGINT/SIGTERM cancelling the sweep context) exits
	// 130, shell-style, so wrappers can tell "cancelled" from "failed".
	if errors.Is(err, context.Canceled) {
		os.Exit(130)
	}
	os.Exit(1)
}

// dumpCDF writes a sample set's CDF to dir/name when -out is set.
func dumpCDF(dir, name string, xs []float64) {
	if dir == "" || len(xs) == 0 {
		return
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fmt.Fprintln(os.Stderr, "empower-sim:", err)
		return
	}
	defer f.Close()
	if _, err := trace.WriteCDF(f, xs, 200); err != nil {
		fmt.Fprintln(os.Stderr, "empower-sim:", err)
	}
}

// slug makes a scheme name filesystem-friendly.
func slug(s string) string {
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, " ", "-")
	return strings.ReplaceAll(s, "/", "")
}

func oneOf(s string, opts ...string) bool {
	for _, o := range opts {
		if s == o {
			return true
		}
	}
	return false
}
