// Command empower-testbed regenerates the testbed-emulation results of §6
// (Figures 9-13 and Table 1) on the 22-node emulated office floor.
//
// The repeated emulations (Figure 10's station pairs, Figures 11/13's
// per-flow runs, Table 1's repetitions) run on the deterministic parallel
// runner (internal/runner): -parallel bounds the worker pool (default:
// all cores) and never changes the numbers, only the wall-clock time;
// the same -seed yields bit-identical results at any worker count.
//
// Flags:
//
//	-fig 9|10|11|12|13|all   figure to regenerate
//	-table 1       table to regenerate
//	-runs N        repetitions for Table 1; alias of -repeats, mirroring
//	               empower-sim (paper: 40 tiny/short, 10 long/conc)
//	-seed N        base RNG seed (fixes the channel realization)
//	-parallel N    worker pool size (<= 0: GOMAXPROCS)
//	-json          emit one JSON object per figure on stdout instead of text
//	-duration S    emulated seconds per run (paper runs are 1000 s)
//	-pairs N       random station pairs for figure 10 (paper: 50)
//	-flows N       flows for figures 11 and 13
//	-delta D       constraint margin δ
//	-shards N      domain-shard workers per emulation (default 1; 0 = one
//	               per core). The testbed floor is one interference
//	               domain, so this only matters for sharded-engine
//	               comparisons; it never changes the numbers
//	-metrics target  publish Prometheus metric snapshots: a file path is
//	               rewritten every 2 s (atomic rename), ":8080" or
//	               "host:port" serves /metrics over HTTP
//	-pprof addr    serve net/http/pprof on addr (e.g. ":6060")
//	-progress      live progress line (done/total, reps/sec, ETA) on stderr
//	-drops         append a per-reason MAC drop report (queue overflow,
//	               link down, channel loss, dead link) after the figures
//
// The observability flags are purely observational: figure output stays
// byte-identical with them on or off at the same seed and worker count
// (-drops appends its report after the figures without altering them).
//
// Usage:
//
//	empower-testbed -fig 9
//	empower-testbed -fig 10 -pairs 50 -duration 200 -parallel 8
//	empower-testbed -table 1 -runs 10 -json
//	empower-testbed -fig all
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/runner"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 9, 10, 11, 12, 13, all")
	table := flag.Int("table", 0, "table to regenerate: 1")
	duration := flag.Float64("duration", 60, "emulated seconds per run (paper runs are 1000 s)")
	pairs := flag.Int("pairs", 20, "random station pairs for figure 10 (paper: 50)")
	flows := flag.Int("flows", 10, "flows for figures 11 and 13")
	repeats := flag.Int("repeats", 5, "repetitions for table 1 (paper: 40 tiny/short, 10 long/conc)")
	runs := flag.Int("runs", 0, "alias of -repeats (mirrors empower-sim); takes precedence when set")
	seed := flag.Int64("seed", 1, "base RNG seed (fixes the channel realization)")
	parallel := flag.Int("parallel", 0, "replication workers (<= 0: GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit results as JSON objects on stdout")
	delta := flag.Float64("delta", 0.05, "constraint margin δ")
	shards := flag.Int("shards", 1, "domain-shard workers per emulation (0: one per core)")
	metrics := flag.String("metrics", "", "Prometheus snapshots: file path, or :port / host:port to serve /metrics")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address")
	progress := flag.Bool("progress", false, "live progress line on stderr")
	drops := flag.Bool("drops", false, "append a per-reason MAC drop report after the figures")
	flag.Parse()

	if *runs > 0 {
		*repeats = *runs
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := experiments.TestbedConfig{
		Seed: *seed, Duration: *duration, Pairs: *pairs,
		Flows: *flows, Repeats: *repeats, Delta: *delta,
		Parallel: *parallel, Shards: shardsValue(*shards),
	}

	if *pprofAddr != "" {
		fail(obs.ServePprof(*pprofAddr))
	}
	if *metrics != "" {
		cfg.Metrics = obs.NewAggregator()
		emitter, err := obs.StartEmitter(*metrics, cfg.Metrics, 0)
		fail(err)
		defer emitter.Close()
		// Runner throughput and utilization ride the same snapshots,
		// refreshed after every finished replication.
		rs := obs.NewRunnerStats(runner.PoolSize(*parallel))
		agg := cfg.Metrics
		cfg.JobTime = func(d time.Duration) {
			rs.JobTime(d)
			agg.With(rs.Sample)
		}
	}
	var line *obs.ProgressLine
	if *progress {
		line = obs.NewProgressLine(os.Stderr, "replications")
		cfg.Progress = line.Update
	}
	if *drops {
		cfg.Drops = &experiments.DropTally{}
	}

	enc := json.NewEncoder(os.Stdout)
	emit := func(figure string, result any, render func() string) {
		line.Finish()
		if *jsonOut {
			envelope := struct {
				Figure string `json:"figure"`
				Seed   int64  `json:"seed"`
				Result any    `json:"result"`
			}{Figure: figure, Seed: *seed, Result: result}
			if err := enc.Encode(envelope); err != nil {
				fail(err)
			}
			return
		}
		fmt.Println(render())
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }
	ran := false

	if want("9") {
		res, err := experiments.Figure9(cfg)
		fail(err)
		emit("9", res, res.Render)
		ran = true
	}
	if want("10") {
		res, err := experiments.Figure10Ctx(ctx, cfg)
		fail(err)
		emit("10", res, res.Render)
		ran = true
	}
	if want("11") {
		res, err := experiments.Figure11Ctx(ctx, cfg)
		fail(err)
		emit("11", res, res.Render)
		ran = true
	}
	if *table == 1 || *fig == "all" {
		res, err := experiments.Table1Ctx(ctx, cfg)
		fail(err)
		emit("table1", res, res.Render)
		ran = true
	}
	if want("12") {
		res, err := experiments.Figure12Ctx(ctx, cfg)
		fail(err)
		emit("12", res, res.Render)
		ran = true
	}
	if want("13") {
		res, err := experiments.Figure13Ctx(ctx, cfg)
		fail(err)
		emit("13", res, res.Render)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if *drops {
		fmt.Print(cfg.Drops.Render())
	}
}

// shardsValue maps the CLI convention (0 = auto) onto node.Config.Shards
// (where 0 is the classic engine and ShardsAuto requests GOMAXPROCS).
func shardsValue(n int) int {
	if n == 0 {
		return node.ShardsAuto
	}
	return n
}

func fail(err error) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "empower-testbed:", err)
	// Interruption (SIGINT/SIGTERM cancelling the sweep context) exits
	// 130, shell-style, so wrappers can tell "cancelled" from "failed".
	if errors.Is(err, context.Canceled) {
		os.Exit(130)
	}
	os.Exit(1)
}
