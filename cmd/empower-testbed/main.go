// Command empower-testbed regenerates the testbed-emulation results of §6
// (Figures 9-13 and Table 1) on the 22-node emulated office floor.
//
// Usage:
//
//	empower-testbed -fig 9
//	empower-testbed -fig 10 -pairs 50 -duration 200
//	empower-testbed -table 1 -repeats 10
//	empower-testbed -fig all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 9, 10, 11, 12, 13, all")
	table := flag.Int("table", 0, "table to regenerate: 1")
	duration := flag.Float64("duration", 60, "emulated seconds per run (paper runs are 1000 s)")
	pairs := flag.Int("pairs", 20, "random station pairs for figure 10 (paper: 50)")
	flows := flag.Int("flows", 10, "flows for figures 11 and 13")
	repeats := flag.Int("repeats", 5, "repetitions for table 1 (paper: 40 tiny/short, 10 long/conc)")
	seed := flag.Int64("seed", 1, "base RNG seed (fixes the channel realization)")
	delta := flag.Float64("delta", 0.05, "constraint margin δ")
	flag.Parse()

	cfg := experiments.TestbedConfig{
		Seed: *seed, Duration: *duration, Pairs: *pairs,
		Flows: *flows, Repeats: *repeats, Delta: *delta,
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }
	ran := false

	if want("9") {
		res, err := experiments.Figure9(cfg)
		fail(err)
		fmt.Println(res.Render())
		ran = true
	}
	if want("10") {
		fmt.Println(experiments.Figure10(cfg).Render())
		ran = true
	}
	if want("11") {
		fmt.Println(experiments.Figure11(cfg).Render())
		ran = true
	}
	if *table == 1 || *fig == "all" {
		fmt.Println(experiments.Table1(cfg).Render())
		ran = true
	}
	if want("12") {
		res, err := experiments.Figure12(cfg)
		fail(err)
		fmt.Println(res.Render())
		ran = true
	}
	if want("13") {
		fmt.Println(experiments.Figure13(cfg).Render())
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "empower-testbed:", err)
		os.Exit(1)
	}
}
