// Command empower-fleet is the crash-safe sweep daemon: a long-running
// service that accepts churn-sweep specs over HTTP, executes their
// replications on a supervised worker pool, and checkpoints every
// completed replication to an fsync'd write-ahead log. Kill it — with
// SIGTERM or with `kill -9` — and a restart pointed at the same -wal
// file replays the log and resumes every incomplete sweep from its
// completed-replication set. Because each replication is a pure
// function of (spec, seed, index), the resumed sweep's final results
// are byte-identical to an uninterrupted run at any worker count.
//
// API (see DESIGN.md for the full contract):
//
//	POST   /sweeps               submit a spec (strict schema; 400 with
//	                             {"error":{"field","reason"}} on typos,
//	                             429 + Retry-After under backpressure)
//	GET    /sweeps               list sweeps
//	GET    /sweeps/{id}          status (state, completed/total, retries)
//	GET    /sweeps/{id}/results  final results JSON, or ?stream=1 for an
//	                             SSE stream of per-replication outputs
//	                             capped by the merged result
//	DELETE /sweeps/{id}          cancel
//	GET    /metrics              Prometheus text (daemon + sweeps)
//	GET    /healthz              liveness
//
// Flags:
//
//	-addr host:port  HTTP listen address (default :8080)
//	-wal file        write-ahead log path (default fleet.wal)
//	-workers N       replication workers per sweep (<= 0: GOMAXPROCS)
//	-retries N       per-replication retries before a sweep fails (2)
//	-timeout D       per-replication attempt timeout (0 = none)
//	-queue N         pending-sweep bound before 429s (default 64)
//	-repdelay D      fault-injection: sleep D before every replication
//	                 attempt (testing aid; widens the crash window)
//	-pprof addr      serve net/http/pprof on addr
//	-quiet           suppress supervision logs
//
// Signals: SIGTERM and SIGINT start a graceful drain — no new sweeps or
// replications start, in-flight replications finish and checkpoint, the
// process exits 0. A second signal exits immediately (the WAL keeps the
// acknowledged state either way).
//
// Usage:
//
//	empower-fleet -addr :8080 -wal /var/lib/empower/fleet.wal
//	curl -s localhost:8080/sweeps -d @examples/sweeps/quickstart.json
//	curl -s localhost:8080/sweeps/sweep-000001
//	curl -sN 'localhost:8080/sweeps/sweep-000001/results?stream=1'
//	curl -s -X DELETE localhost:8080/sweeps/sweep-000001
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/fleet"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	wal := flag.String("wal", "fleet.wal", "write-ahead log path (the daemon's durable state)")
	workers := flag.Int("workers", 0, "replication workers per sweep (<= 0: GOMAXPROCS)")
	retries := flag.Int("retries", 2, "per-replication retries before the sweep fails")
	timeout := flag.Duration("timeout", 0, "per-replication attempt timeout (0 = none)")
	queue := flag.Int("queue", fleet.DefaultQueueBound, "pending-sweep queue bound (429 beyond it)")
	repDelay := flag.Duration("repdelay", 0, "fault-injection: sleep before every replication attempt")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address")
	quiet := flag.Bool("quiet", false, "suppress supervision logs")
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	if *quiet {
		logger = log.New(io.Discard, "", 0)
	}
	if *pprofAddr != "" {
		fail(obs.ServePprof(*pprofAddr))
	}

	srv, err := fleet.New(fleet.Config{
		WALPath:    *wal,
		QueueBound: *queue,
		Workers:    *workers,
		MaxRetries: *retries,
		RepTimeout: *timeout,
		RepDelay:   *repDelay,
		Log:        logger,
	})
	fail(err)
	if n := srv.Resumable(); n > 0 {
		logger.Printf("empower-fleet: recovered %d incomplete sweep(s); resuming", n)
	}

	ln, err := net.Listen("tcp", *addr)
	fail(err)
	logger.Printf("empower-fleet: serving on %s (wal %s)", ln.Addr(), *wal)

	// First SIGTERM/SIGINT cancels the context → graceful drain; the
	// NotifyContext then restores default handling, so a second signal
	// kills the process the ordinary way. Either way the WAL holds every
	// acknowledged replication.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fail(srv.Run(ctx, ln))
	logger.Printf("empower-fleet: drained; all completed replications checkpointed")
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "empower-fleet:", err)
		os.Exit(1)
	}
}
