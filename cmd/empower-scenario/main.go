// Command empower-scenario runs a dynamic-network scenario — link
// failures and recoveries, flapping links, capacity drift, node churn,
// stochastic flow arrivals — against the packet-level EMPoWER emulation
// and reports failover latency and goodput per scheme (§6.1's dynamics,
// systematized).
//
// A scenario is a JSON file (see examples/scenarios/ and the schema
// section in DESIGN.md) that is self-contained: it carries its topology
// (a generated instance kind or an explicit custom network), its flows,
// an explicit event timeline, and stochastic processes expanded
// deterministically from the seed. The replications run on the
// deterministic parallel runner: -parallel bounds the worker pool and
// never changes the numbers — the same -seed yields byte-identical
// output at any worker count.
//
// Flags:
//
//	-scenario file   scenario JSON file (required)
//	-runs N          scenario replications per scheme (default 20)
//	-seed N          base RNG seed
//	-parallel N      worker pool size (<= 0: GOMAXPROCS)
//	-schemes list    comma-separated scheme names, or "all"
//	                 (default "EMPoWER,SP,MP-w/o-CC,SP-w/o-CC")
//	-json            emit one JSON object on stdout instead of text
//	-delta D         congestion-control constraint margin δ
//	-bin S           failover measurement bin in seconds (default 0.2)
//	-frac F          goodput-recovery fraction defining failover (0.8)
//	-manage          attach the §3.2 route manager with fast failover to
//	                 multipath CC flows (default true)
//	-shards N        domain-sharded emulation engine: run up to N parallel
//	                 workers over the topology's interference domains
//	                 (default 1; 0 = one worker per core). Never changes
//	                 the numbers — the trajectory is bit-identical at any
//	                 shard count; connected single-domain topologies run
//	                 the classic engine regardless
//	-invariants      attach the runtime invariant checker (flow
//	                 conservation, dead-link silence, rate bounds) to
//	                 every replication, report per-reason drop counters,
//	                 and exit non-zero on any violation
//	-flaprates list  run the goodput-vs-flap-rate sweep at these flap
//	                 frequencies (cycles/minute, e.g. "0.5,1,2,4")
//	                 instead of the failover experiment
//
// Usage:
//
//	empower-scenario -scenario examples/scenarios/flaps.json -runs 50 -seed 7 -parallel 8
//	empower-scenario -scenario examples/scenarios/flaps.json -flaprates 0.5,1,2,4 -json
//	empower-scenario -scenario examples/scenarios/churn.json -schemes all
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/node"
	"repro/internal/scenario"
)

func main() {
	scPath := flag.String("scenario", "", "scenario JSON file (required)")
	runs := flag.Int("runs", 20, "scenario replications per scheme")
	seed := flag.Int64("seed", 1, "base RNG seed")
	parallel := flag.Int("parallel", 0, "replication workers (<= 0: GOMAXPROCS)")
	schemesCSV := flag.String("schemes", "EMPoWER,SP,MP-w/o-CC,SP-w/o-CC",
		`comma-separated scheme names, or "all"`)
	jsonOut := flag.Bool("json", false, "emit results as a JSON object on stdout")
	delta := flag.Float64("delta", 0.05, "constraint margin δ")
	bin := flag.Float64("bin", 0.2, "failover measurement bin (seconds)")
	frac := flag.Float64("frac", 0.8, "goodput-recovery fraction defining failover")
	manage := flag.Bool("manage", true, "attach the route manager (fast failover) to multipath CC flows")
	shards := flag.Int("shards", 1, "domain-shard workers per emulation (0: one per core)")
	invariants := flag.Bool("invariants", false, "attach the runtime invariant checker to every replication; report per-reason drops and fail on any violation")
	flapRates := flag.String("flaprates", "", "goodput-vs-flap-rate sweep frequencies (cycles/minute)")
	flag.Parse()

	if *scPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	sc, err := scenario.Load(*scPath)
	fail(err)
	schemes, err := experiments.ParseSchemes(*schemesCSV)
	fail(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := experiments.ChurnConfig{
		Seed: *seed, Runs: *runs, Schemes: schemes, Delta: *delta,
		Bin: *bin, Frac: *frac, ManageRoutes: *manage, Parallel: *parallel,
		Shards: shardsValue(*shards), Invariants: *invariants,
	}

	enc := json.NewEncoder(os.Stdout)
	emit := func(experiment string, result any, render func() string) {
		if *jsonOut {
			envelope := struct {
				Experiment string `json:"experiment"`
				Scenario   string `json:"scenario"`
				Seed       int64  `json:"seed"`
				Result     any    `json:"result"`
			}{Experiment: experiment, Scenario: sc.Name, Seed: *seed, Result: result}
			fail(enc.Encode(envelope))
			return
		}
		fmt.Println(render())
	}

	if *flapRates != "" {
		rates, err := parseFloats(*flapRates)
		fail(err)
		res, err := experiments.ChurnFlapSweepCtx(ctx, sc, cfg, rates)
		fail(err)
		emit("churn-flap-sweep", res, res.Render)
		return
	}
	res, err := experiments.ChurnFailoverCtx(ctx, sc, cfg)
	fail(err)
	emit("churn-failover", res, res.Render)
	if *invariants {
		violations := 0
		for _, row := range res.Rows {
			violations += row.Violations
		}
		if violations > 0 {
			fmt.Fprintf(os.Stderr, "empower-scenario: %d invariant violations\n", violations)
			os.Exit(1)
		}
	}
}

// shardsValue maps the CLI convention (0 = auto) onto node.Config.Shards
// (where 0 is the classic engine and ShardsAuto requests GOMAXPROCS).
func shardsValue(n int) int {
	if n == 0 {
		return node.ShardsAuto
	}
	return n
}

func parseFloats(csv string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("empower-scenario: bad rate %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "empower-scenario:", err)
		os.Exit(1)
	}
}
