// Command empower-scenario runs a dynamic-network scenario — link
// failures and recoveries, flapping links, capacity drift, node churn,
// stochastic flow arrivals — against the packet-level EMPoWER emulation
// and reports failover latency and goodput per scheme (§6.1's dynamics,
// systematized).
//
// A scenario is a JSON file (see examples/scenarios/ and the schema
// section in DESIGN.md) that is self-contained: it carries its topology
// (a generated instance kind or an explicit custom network), its flows,
// an explicit event timeline, and stochastic processes expanded
// deterministically from the seed. The replications run on the
// deterministic parallel runner: -parallel bounds the worker pool and
// never changes the numbers — the same -seed yields byte-identical
// output at any worker count.
//
// Flags:
//
//	-scenario file   scenario JSON file (required)
//	-runs N          scenario replications per scheme (default 20)
//	-seed N          base RNG seed
//	-parallel N      worker pool size (<= 0: GOMAXPROCS)
//	-schemes list    comma-separated scheme names, or "all"
//	                 (default "EMPoWER,SP,MP-w/o-CC,SP-w/o-CC")
//	-json            emit one JSON object on stdout instead of text
//	-delta D         congestion-control constraint margin δ
//	-bin S           failover measurement bin in seconds (default 0.2)
//	-frac F          goodput-recovery fraction defining failover (0.8)
//	-manage          attach the §3.2 route manager with fast failover to
//	                 multipath CC flows (default true)
//	-shards N        domain-sharded emulation engine: run up to N parallel
//	                 workers over the topology's interference domains
//	                 (default 1; 0 = one worker per core). Never changes
//	                 the numbers — the trajectory is bit-identical at any
//	                 shard count; connected single-domain topologies run
//	                 the classic engine regardless
//	-invariants      attach the runtime invariant checker (flow
//	                 conservation, dead-link silence, rate bounds) to
//	                 every replication, report per-reason drop counters,
//	                 and exit non-zero on any violation (the failure
//	                 message includes each owning domain's flight-recorder
//	                 tail)
//	-flaprates list  run the goodput-vs-flap-rate sweep at these flap
//	                 frequencies (cycles/minute, e.g. "0.5,1,2,4")
//	                 instead of the failover experiment
//	-metrics target  publish Prometheus metric snapshots: a file path is
//	                 rewritten every 2 s (atomic rename), ":8080" or
//	                 "host:port" serves /metrics over HTTP
//	-pprof addr      serve net/http/pprof on addr (e.g. ":6060")
//	-progress        live progress line (done/total, reps/sec, ETA) on
//	                 stderr
//	-trace file      re-run one replication with the flight recorder
//	                 attached and write a Chrome trace-event JSON (open
//	                 in Perfetto); -tracerun picks the replication
//	-tracerun N      replication index for -trace (default 0; the scheme
//	                 is the first of -schemes)
//	-recorder N      attach an N-record flight recorder to every domain of
//	                 every replication (0 disables; -invariants implies
//	                 256 so violation reports carry their event tail)
//	-phases          report the bind/run/collect wall-clock breakdown
//	                 (a "phases" object with -json, a stderr line without)
//
// Every observability flag is purely observational: stdout stays
// byte-identical with them on or off at the same seed and shard count.
//
// Usage:
//
//	empower-scenario -scenario examples/scenarios/flaps.json -runs 50 -seed 7 -parallel 8
//	empower-scenario -scenario examples/scenarios/flaps.json -flaprates 0.5,1,2,4 -json
//	empower-scenario -scenario examples/scenarios/churn.json -schemes all
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/scenario"
)

func main() {
	scPath := flag.String("scenario", "", "scenario JSON file (required)")
	runs := flag.Int("runs", 20, "scenario replications per scheme")
	seed := flag.Int64("seed", 1, "base RNG seed")
	parallel := flag.Int("parallel", 0, "replication workers (<= 0: GOMAXPROCS)")
	schemesCSV := flag.String("schemes", "EMPoWER,SP,MP-w/o-CC,SP-w/o-CC",
		`comma-separated scheme names, or "all"`)
	jsonOut := flag.Bool("json", false, "emit results as a JSON object on stdout")
	delta := flag.Float64("delta", 0.05, "constraint margin δ")
	bin := flag.Float64("bin", 0.2, "failover measurement bin (seconds)")
	frac := flag.Float64("frac", 0.8, "goodput-recovery fraction defining failover")
	manage := flag.Bool("manage", true, "attach the route manager (fast failover) to multipath CC flows")
	shards := flag.Int("shards", 1, "domain-shard workers per emulation (0: one per core)")
	invariants := flag.Bool("invariants", false, "attach the runtime invariant checker to every replication; report per-reason drops and fail on any violation")
	flapRates := flag.String("flaprates", "", "goodput-vs-flap-rate sweep frequencies (cycles/minute)")
	metrics := flag.String("metrics", "", "Prometheus snapshots: file path, or :port / host:port to serve /metrics")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address")
	progress := flag.Bool("progress", false, "live progress line on stderr")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of one replication (see -tracerun)")
	traceRun := flag.Int("tracerun", 0, "replication index for -trace")
	recorder := flag.Int("recorder", 0, "flight-recorder ring size per domain (0 disables; -invariants implies 256)")
	phases := flag.Bool("phases", false, "report the bind/run/collect wall-clock phase breakdown")
	flag.Parse()

	if *scPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	sc, err := scenario.Load(*scPath)
	fail(err)
	schemes, err := experiments.ParseSchemes(*schemesCSV)
	fail(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := experiments.ChurnConfig{
		Seed: *seed, Runs: *runs, Schemes: schemes, Delta: *delta,
		Bin: *bin, Frac: *frac, ManageRoutes: *manage, Parallel: *parallel,
		Shards: shardsValue(*shards), Invariants: *invariants,
		Recorder: *recorder,
	}

	if *pprofAddr != "" {
		fail(obs.ServePprof(*pprofAddr))
	}
	var emitter *obs.Emitter
	if *metrics != "" {
		cfg.Metrics = obs.NewAggregator()
		emitter, err = obs.StartEmitter(*metrics, cfg.Metrics, 0)
		fail(err)
		// Runner throughput and utilization ride the same snapshots,
		// refreshed after every finished replication.
		rs := obs.NewRunnerStats(runner.PoolSize(*parallel))
		agg := cfg.Metrics
		cfg.JobTime = func(d time.Duration) {
			rs.JobTime(d)
			agg.With(rs.Sample)
		}
	}
	var line *obs.ProgressLine
	if *progress {
		line = obs.NewProgressLine(os.Stderr, "replications")
		cfg.Progress = line.Update
	}
	var ph *obs.Phases
	if *phases {
		ph = &obs.Phases{}
		cfg.Phases = ph
	}

	enc := json.NewEncoder(os.Stdout)
	emit := func(experiment string, result any, render func() string) {
		line.Finish()
		if *jsonOut {
			envelope := struct {
				Experiment string              `json:"experiment"`
				Scenario   string              `json:"scenario"`
				Seed       int64               `json:"seed"`
				Result     any                 `json:"result"`
				Phases     *obs.PhaseBreakdown `json:"phases,omitempty"`
			}{Experiment: experiment, Scenario: sc.Name, Seed: *seed, Result: result}
			if ph != nil {
				bd := ph.Breakdown()
				envelope.Phases = &bd
			}
			fail(enc.Encode(envelope))
			return
		}
		fmt.Println(render())
		if ph != nil {
			bd := ph.Breakdown()
			fmt.Fprintf(os.Stderr, "phases: bind %.3fs run %.3fs collect %.3fs (worker time)\n",
				bd.BindSeconds, bd.RunSeconds, bd.CollectSeconds)
		}
	}
	finish := func() {
		fail(emitter.Close())
		if *tracePath != "" {
			fail(writeTrace(sc, cfg, *traceRun, schemes[0], *tracePath))
		}
	}

	if *flapRates != "" {
		rates, err := parseFloats(*flapRates)
		fail(err)
		res, err := experiments.ChurnFlapSweepCtx(ctx, sc, cfg, rates)
		fail(err)
		emit("churn-flap-sweep", res, res.Render)
		finish()
		return
	}
	res, err := experiments.ChurnFailoverCtx(ctx, sc, cfg)
	fail(err)
	emit("churn-failover", res, res.Render)
	finish()
	if *invariants {
		violations := 0
		for _, row := range res.Rows {
			violations += row.Violations
			for _, detail := range row.ViolationDetails {
				fmt.Fprintf(os.Stderr, "empower-scenario: scheme %s violation:\n%s\n", row.Scheme, detail)
			}
		}
		if violations > 0 {
			fmt.Fprintf(os.Stderr, "empower-scenario: %d invariant violations\n", violations)
			os.Exit(1)
		}
	}
}

// traceRing sizes the per-domain flight-recorder ring of a -trace re-run:
// large enough to hold a full replication of the example scenarios rather
// than just a tail.
const traceRing = 1 << 16

// writeTrace re-runs replication `run` under `scheme` with the flight
// recorder attached and writes the per-domain records as Chrome
// trace-event JSON. The re-run reuses the sweep's exact seed derivations,
// so the trace shows the trajectory the sweep measured.
func writeTrace(sc *scenario.Scenario, cfg experiments.ChurnConfig, run int, scheme core.Scheme, path string) error {
	doms, err := experiments.ChurnTrace(sc, cfg, run, scheme, traceRing)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, doms); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// shardsValue maps the CLI convention (0 = auto) onto node.Config.Shards
// (where 0 is the classic engine and ShardsAuto requests GOMAXPROCS).
func shardsValue(n int) int {
	if n == 0 {
		return node.ShardsAuto
	}
	return n
}

func parseFloats(csv string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("empower-scenario: bad rate %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "empower-scenario:", err)
	// Interruption (SIGINT/SIGTERM cancelling the sweep context) exits
	// 130, shell-style, so wrappers can tell "cancelled" from "failed".
	if errors.Is(err, context.Canceled) {
		os.Exit(130)
	}
	os.Exit(1)
}
