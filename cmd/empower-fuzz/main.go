// Command empower-fuzz generates randomized adversarial scenarios —
// correlated failure groups, gray failures, flash crowds, churn,
// capacity drift on clustered hybrid topologies — and checks each one
// against the reproduction's correctness oracles:
//
//   - the runtime invariant checker (flow conservation at relays,
//     dead-link silence, controller rates within estimated capacity,
//     monotone virtual time, per-reason drop accounting);
//   - the determinism contract, differentially: shards=1 and shards=4
//     must produce bit-identical trajectory signatures for the same
//     (scenario, seed) pair;
//   - cross-scheme sanity: a second scheme runs the same scenario and
//     must stay finite and physical.
//
// On the first failure the scenario is greedily minimized and written
// as a reproducer JSON (strict schema — it reloads through
// scenario.Load and replays with empower-scenario), the minimized
// reproducer is replayed with the flight recorder attached and dumped
// as a Chrome trace-event JSON next to it (open in Perfetto), and the
// process exits non-zero.
//
// Flags:
//
//	-runs N       randomized scenarios to check (default 25)
//	-seed N       base RNG seed (default 1)
//	-out dir      reproducer output directory (default "fuzz-failures")
//	-duration S   max generated scenario length in emulated seconds (12)
//	-inject mode  seed a deliberate defect: "counter" corrupts a relay
//	              conservation counter mid-run (the invariant checker
//	              must catch it), "seed" perturbs the comparison arm's
//	              seeds (the differential oracle must catch it)
//	-v            log every run
//
// Usage:
//
//	empower-fuzz -runs 25 -seed 1
//	empower-fuzz -runs 5 -inject counter -out /tmp/fuzz   # must fail
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/fuzz"
)

func main() {
	runs := flag.Int("runs", 25, "randomized scenarios to check")
	seed := flag.Int64("seed", 1, "base RNG seed")
	out := flag.String("out", "fuzz-failures", "reproducer output directory")
	duration := flag.Float64("duration", 12, "max generated scenario length (emulated seconds)")
	inject := flag.String("inject", "", `seed a deliberate defect: "counter" or "seed"`)
	verbose := flag.Bool("v", false, "log every run")
	flag.Parse()

	cfg := fuzz.Config{
		Runs:        *runs,
		Seed:        *seed,
		OutDir:      *out,
		MaxDuration: *duration,
	}
	switch *inject {
	case "":
	case string(fuzz.InjectCounter):
		cfg.Inject = fuzz.InjectCounter
	case string(fuzz.InjectSeed):
		cfg.Inject = fuzz.InjectSeed
	default:
		fmt.Fprintf(os.Stderr, "empower-fuzz: unknown -inject mode %q\n", *inject)
		os.Exit(2)
	}
	if *verbose {
		cfg.Log = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := fuzz.RunCtx(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "empower-fuzz:", err)
		// Interruption (SIGINT/SIGTERM between scenarios) exits 130,
		// shell-style, so wrappers can tell "cancelled" from "failed".
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
	if res.Failure != nil {
		f := res.Failure
		fmt.Fprintf(os.Stderr, "empower-fuzz: run %d failed check %s\n  %s\n", f.Run, f.Check, f.Detail)
		if f.Repro != "" {
			fmt.Fprintf(os.Stderr, "  reproducer: %s (timeline seed %d, emulation seed %d)\n",
				f.Repro, f.TimelineSeed, f.EmuSeed)
		}
		if f.Trace != "" {
			fmt.Fprintf(os.Stderr, "  flight-recorder trace: %s (Chrome trace-event JSON; open in Perfetto)\n", f.Trace)
		}
		os.Exit(1)
	}
	fmt.Printf("empower-fuzz: %d scenarios clean (seed %d)\n", res.Clean, *seed)
}
