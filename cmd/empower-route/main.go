// Command empower-route computes EMPoWER routes for a topology described
// in a JSON file (see package repro/internal/netio for the format): the
// single-path procedure, the n shortest paths, and the multipath
// combination with its total achievable rate.
//
// Usage:
//
//	empower-route -topo net.json -src a -dst c
//	empower-route -example          # the paper's Figure 1 scenario
//	empower-route -example -dump    # print the example topology as JSON
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/netio"
	"repro/internal/routing"
)

func load(path string) (*graph.Network, map[string]graph.NodeID, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	doc, err := netio.Read(f)
	if err != nil {
		return nil, nil, err
	}
	return doc.Build(nil)
}

func exampleNet() (*graph.Network, map[string]graph.NodeID) {
	b := graph.NewBuilder(nil)
	ids := map[string]graph.NodeID{}
	ids["a"] = b.AddNode("a", 0, 0, graph.TechPLC, graph.TechWiFi)
	ids["b"] = b.AddNode("b", 10, 0, graph.TechPLC, graph.TechWiFi)
	ids["c"] = b.AddNode("c", 20, 0, graph.TechWiFi)
	b.AddDuplex(ids["a"], ids["b"], graph.TechPLC, 10)
	b.AddDuplex(ids["a"], ids["b"], graph.TechWiFi, 15)
	b.AddDuplex(ids["b"], ids["c"], graph.TechWiFi, 30)
	return b.Build(), ids
}

func main() {
	topoPath := flag.String("topo", "", "topology JSON file")
	src := flag.String("src", "a", "source node name")
	dst := flag.String("dst", "c", "destination node name")
	n := flag.Int("n", 5, "n for n-shortest")
	example := flag.Bool("example", false, "use the built-in Figure 1 scenario")
	dump := flag.Bool("dump", false, "print the topology as JSON and exit")
	flag.Parse()

	var net *graph.Network
	var ids map[string]graph.NodeID
	var err error
	if *example || *topoPath == "" {
		net, ids = exampleNet()
	} else {
		net, ids, err = load(*topoPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "empower-route:", err)
			os.Exit(1)
		}
	}
	if *dump {
		if err := netio.FromNetwork(net).Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "empower-route:", err)
			os.Exit(1)
		}
		return
	}
	s, ok := ids[*src]
	if !ok {
		fmt.Fprintf(os.Stderr, "empower-route: unknown source %q\n", *src)
		os.Exit(1)
	}
	d, ok := ids[*dst]
	if !ok {
		fmt.Fprintf(os.Stderr, "empower-route: unknown destination %q\n", *dst)
		os.Exit(1)
	}

	cfg := routing.DefaultConfig()
	cfg.N = *n

	if p := routing.SinglePath(net, s, d, cfg); p != nil {
		fmt.Printf("single-path:   %s  (R = %.2f Mbps, weight %.4f)\n",
			net.PathString(p), routing.RatePath(net, p), routing.PathWeight(net, p, cfg))
	} else {
		fmt.Println("single-path:   unreachable")
	}

	fmt.Printf("%d-shortest:\n", cfg.N)
	for i, p := range routing.NShortest(net, s, d, cfg) {
		fmt.Printf("  %d. %s  (R = %.2f Mbps)\n", i+1, net.PathString(p), routing.RatePath(net, p))
	}

	comb := routing.Multipath(net, s, d, cfg)
	fmt.Printf("multipath combination (total %.2f Mbps):\n", comb.Total)
	for i, p := range comb.Paths {
		fmt.Printf("  route %d @ %.2f Mbps: %s\n", i+1, comb.Rates[i], net.PathString(p))
	}
}
