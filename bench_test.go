// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus micro-benchmarks for the load-bearing
// primitives (route computation, controller slots, header codec, MAC
// events). The figure benches run reduced instance counts per iteration —
// the cmd/ binaries regenerate the full figures; these benches make the
// regeneration cost measurable and keep the harness exercised by
// `go test -bench`.
package empower

import (
	"fmt"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/wire"
)

// benchSim is a reduced Monte-Carlo configuration for per-iteration runs.
var benchSim = experiments.SimConfig{Runs: 8, Seed: 42, Core: core.Options{Slots: 1200}}

// benchTestbed is a reduced emulation configuration.
var benchTestbed = experiments.TestbedConfig{Seed: 42, Duration: 10, Pairs: 3, Flows: 2, Repeats: 1}

func BenchmarkFigure4Residential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure4(experiments.TopoResidential, benchSim)
		if len(r.Samples[core.SchemeEMPoWER]) == 0 {
			b.Fatal("no samples")
		}
	}
}

func BenchmarkFigure4Enterprise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure4(experiments.TopoEnterprise, benchSim)
	}
}

// BenchmarkFigure4ParallelSweep measures the replication-level speedup of
// the internal/runner refactor on the Figure 4 Monte-Carlo sweep: the
// workers=1 case is the old serial loop, workers=GOMAXPROCS the default
// parallel configuration. The results are bit-identical across the two
// (see TestFigure4ParallelDeterminism); only the wall-clock differs.
func BenchmarkFigure4ParallelSweep(b *testing.B) {
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		cfg := benchSim
		cfg.Runs = 16
		cfg.Parallel = workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.Figure4(experiments.TopoResidential, cfg)
				if len(r.Samples[core.SchemeEMPoWER]) != cfg.Runs {
					b.Fatal("sample count wrong")
				}
			}
		})
	}
}

func BenchmarkFigure5WorstFlows(b *testing.B) {
	f4 := experiments.Figure4(experiments.TopoResidential, benchSim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure5(f4)
	}
}

func BenchmarkFigure6OptimalRatios(b *testing.B) {
	cfg := benchSim
	cfg.Runs = 4
	for i := 0; i < b.N; i++ {
		experiments.Figure6(experiments.TopoResidential, cfg)
	}
}

func BenchmarkFigure7Utility(b *testing.B) {
	cfg := benchSim
	cfg.Runs = 3
	for i := 0; i < b.N; i++ {
		experiments.Figure7(experiments.TopoResidential, cfg)
	}
}

func BenchmarkConvergenceComparison(b *testing.B) {
	cfg := benchSim
	cfg.Runs = 2
	for i := 0; i < b.N; i++ {
		experiments.Convergence(experiments.TopoResidential, cfg)
	}
}

func BenchmarkFigure9TwoFlowTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(benchTestbed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10TestbedPairs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure10(benchTestbed)
	}
}

func BenchmarkFigure11FlowBars(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure11(benchTestbed)
	}
}

func BenchmarkTable1Downloads(b *testing.B) {
	cfg := benchTestbed
	for i := 0; i < b.N; i++ {
		experiments.Table1(cfg)
	}
}

func BenchmarkFigure12TCPTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure12(benchTestbed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13TCPBars(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure13(benchTestbed)
	}
}

// --- micro-benchmarks ---

// BenchmarkRoutingN5 measures the full multipath route computation on a
// residential instance with n = 5, the paper's ~50 ms operation (§3.2).
func BenchmarkRoutingN5(b *testing.B) {
	inst := topology.Residential(stats.NewRand(1), topology.Config{})
	net := inst.Build(topology.ViewHybrid)
	rng := stats.NewRand(2)
	src, dst := inst.RandomFlow(rng)
	// Warm the routing workspace pool before the timer: testing runs a GC
	// ahead of every benchmark, which drains sync.Pool (two collections
	// clear the victim cache), so at -benchtime 1x the first op would be
	// charged the full workspace rebuild and report thousands of phantom
	// bytes/op. Steady-state cost is what the benchmark is after.
	routing.Multipath(net.Network, src, dst, routing.DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routing.Multipath(net.Network, src, dst, routing.DefaultConfig())
	}
}

// BenchmarkAblationNShortest sweeps n (the n-shortest parameter) to show
// the cost/benefit knob of §3.2.
func BenchmarkAblationNShortest(b *testing.B) {
	inst := topology.Residential(stats.NewRand(1), topology.Config{})
	net := inst.Build(topology.ViewHybrid)
	rng := stats.NewRand(2)
	src, dst := inst.RandomFlow(rng)
	for _, n := range []int{1, 2, 5, 8} {
		cfg := routing.DefaultConfig()
		cfg.N = n
		b.Run(benchName("n", n), func(b *testing.B) {
			// Untimed warm-up: repopulate the workspace pool drained by the
			// pre-benchmark GC (see BenchmarkRoutingN5).
			routing.Multipath(net.Network, src, dst, cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				routing.Multipath(net.Network, src, dst, cfg)
			}
		})
	}
}

// BenchmarkAblationCSC compares route computation with and without the
// channel-switching cost.
func BenchmarkAblationCSC(b *testing.B) {
	inst := topology.Residential(stats.NewRand(3), topology.Config{})
	net := inst.Build(topology.ViewHybrid)
	rng := stats.NewRand(4)
	src, dst := inst.RandomFlow(rng)
	for _, csc := range []bool{true, false} {
		cfg := routing.DefaultConfig()
		cfg.UseCSC = csc
		name := "csc-on"
		if !csc {
			name = "csc-off"
		}
		b.Run(name, func(b *testing.B) {
			// Untimed warm-up: repopulate the workspace pool drained by the
			// pre-benchmark GC (see BenchmarkRoutingN5).
			routing.SinglePath(net.Network, src, dst, cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				routing.SinglePath(net.Network, src, dst, cfg)
			}
		})
	}
}

// BenchmarkControllerSlot measures one congestion-controller time slot on
// an enterprise instance with three multipath flows.
func BenchmarkControllerSlot(b *testing.B) {
	inst := topology.Enterprise(stats.NewRand(5), topology.Config{})
	rng := stats.NewRand(6)
	pairs := make([][2]NodeID, 3)
	for i := range pairs {
		s, d := inst.RandomFlow(rng)
		pairs[i] = [2]NodeID{s, d}
	}
	net := inst.Build(topology.ViewHybrid)
	var routes []ControllerRoute
	for f, pr := range pairs {
		for _, p := range core.RoutesFor(core.SchemeEMPoWER, net.Network, pr[0], pr[1]) {
			routes = append(routes, ControllerRoute{Links: p, Flow: f})
		}
	}
	if len(routes) == 0 {
		b.Skip("no connected flows on this seed")
	}
	ctrl, err := NewController(net.Network, routes, ControllerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Step()
	}
}

// BenchmarkControllerBatch measures the batch controller API end to end on
// the BenchmarkControllerSlot problem: one Reset (pooled re-initialization
// onto the same network and routes) plus a 100-slot RunAppend into a
// reused trajectory buffer — the §5 sweep's per-evaluation controller
// cost, amortized per slot by the 100-slot run.
func BenchmarkControllerBatch(b *testing.B) {
	inst := topology.Enterprise(stats.NewRand(5), topology.Config{})
	rng := stats.NewRand(6)
	pairs := make([][2]NodeID, 3)
	for i := range pairs {
		s, d := inst.RandomFlow(rng)
		pairs[i] = [2]NodeID{s, d}
	}
	net := inst.Build(topology.ViewHybrid)
	var routes []ControllerRoute
	for f, pr := range pairs {
		for _, p := range core.RoutesFor(core.SchemeEMPoWER, net.Network, pr[0], pr[1]) {
			routes = append(routes, ControllerRoute{Links: p, Flow: f})
		}
	}
	if len(routes) == 0 {
		b.Skip("no connected flows on this seed")
	}
	const slots = 100
	var ctrl Controller
	if err := ctrl.Reset(net.Network, routes, ControllerOptions{}); err != nil {
		b.Fatal(err)
	}
	traj := ctrl.RunAppend(slots, nil) // warm-up sizes the buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctrl.Reset(net.Network, routes, ControllerOptions{}); err != nil {
			b.Fatal(err)
		}
		traj = ctrl.RunAppend(slots, traj[:0])
	}
	_ = traj
}

// BenchmarkHeaderCodec measures the 20-byte layer-2.5 header round trip.
func BenchmarkHeaderCodec(b *testing.B) {
	h := wire.Header{QR: 1.25, Seq: 7}
	h.SetRoute([]wire.InterfaceID{1, 2, 3})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := h.MarshalBinary()
		var g wire.Header
		if err := g.UnmarshalBinary(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDataFrameCodec measures the full data-frame round trip.
func BenchmarkDataFrameCodec(b *testing.B) {
	f := wire.DataFrame{Src: 1, Dst: 13, FlowID: 3, PayloadLen: 1500}
	f.Header.SetRoute([]wire.InterfaceID{4, 5})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := f.MarshalBinary()
		var g wire.DataFrame
		if err := g.UnmarshalBinary(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmulationSecond measures one emulated second of the shipped
// flaps scenario under EMPoWER with route management — the steady-state
// cost every §6 figure and churn experiment pays per emulated second
// (MAC events, agents, acks, price broadcasts, scenario events). It is
// the allocation canary of the emulation fast path: scripts/bench.sh
// records it in BENCH_SCENARIO.json next to the end-to-end churn sweep.
func BenchmarkEmulationSecond(b *testing.B) {
	sc, err := scenario.Load("examples/scenarios/flaps.json")
	if err != nil {
		b.Fatal(err)
	}
	var em *node.Emulation
	var t float64
	setup := func() {
		net, err := sc.Topology.BuildView(stats.SplitSeed(42, 2_000_000), core.SchemeEMPoWER.View())
		if err != nil {
			b.Fatal(err)
		}
		em = NewEmulation(net, EmulationConfig{Estimation: true, ExpectedDuration: sc.Duration}, 7)
		if _, err := scenario.Bind(em, sc, stats.SplitSeed(42, 1_000_000), scenario.Options{ManageRoutes: true}); err != nil {
			b.Fatal(err)
		}
		em.Run(5) // warm up past the ramp
		t = 5
	}
	setup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t+1 > sc.Duration {
			b.StopTimer()
			setup()
			b.StartTimer()
		}
		t++
		em.Run(t)
	}
}

// BenchmarkMetricsOverhead is BenchmarkEmulationSecond with the full
// observability layer attached: a 256-record flight recorder per domain
// (one ring-slot write per engine/MAC event) plus a registry sample per
// emulated second — more often than real sweeps, which sample once per
// replication. The comparison against BenchmarkEmulationSecond is the
// issue's overhead budget: ≤ 5% ns/op, and still zero allocs/op.
// scripts/bench.sh records both side by side in BENCH_SCENARIO.json.
func BenchmarkMetricsOverhead(b *testing.B) {
	sc, err := scenario.Load("examples/scenarios/flaps.json")
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.NewRegistry()
	var em *node.Emulation
	var t float64
	setup := func() {
		net, err := sc.Topology.BuildView(stats.SplitSeed(42, 2_000_000), core.SchemeEMPoWER.View())
		if err != nil {
			b.Fatal(err)
		}
		em = NewEmulation(net, EmulationConfig{Estimation: true, ExpectedDuration: sc.Duration, Recorder: 256}, 7)
		if _, err := scenario.Bind(em, sc, stats.SplitSeed(42, 1_000_000), scenario.Options{ManageRoutes: true}); err != nil {
			b.Fatal(err)
		}
		em.Run(5) // warm up past the ramp
		em.SampleMetrics(reg)
		t = 5
	}
	setup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t+1 > sc.Duration {
			b.StopTimer()
			setup()
			b.StartTimer()
		}
		t++
		em.Run(t)
		em.SampleMetrics(reg)
	}
}

// BenchmarkEmulationSecondSharded measures one emulated second of the
// shipped multi-cluster scenario (four disjoint interference domains,
// one managed flow plus a flapping link per cluster) on the
// domain-sharded engine at 1, 2 and 4 workers. The trajectory is
// bit-identical across the shard counts (TestScenarioShardedDeterminism);
// only the wall-clock differs, and only when GOMAXPROCS > 1 — on a
// single-core runner the sub-benchmarks measure the coordinator's
// overhead instead. scripts/bench.sh records it in BENCH_SCENARIO.json.
func BenchmarkEmulationSecondSharded(b *testing.B) {
	sc, err := scenario.Load("examples/scenarios/clusters.json")
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var em *node.Emulation
			var t float64
			setup := func() {
				net, err := sc.Topology.Build(3)
				if err != nil {
					b.Fatal(err)
				}
				em = NewEmulation(net, EmulationConfig{
					Estimation: true, ExpectedDuration: sc.Duration, Shards: shards,
				}, 7)
				if em.NumDomains() < 4 {
					b.Fatalf("clusters scenario decomposed into %d domains, want >= 4", em.NumDomains())
				}
				if _, err := scenario.Bind(em, sc, stats.SplitSeed(42, 1_000_000), scenario.Options{ManageRoutes: true}); err != nil {
					b.Fatal(err)
				}
				em.Run(5) // warm up past the ramp
				t = 5
			}
			setup()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if t+1 > sc.Duration {
					b.StopTimer()
					setup()
					b.StartTimer()
				}
				t++
				em.Run(t)
			}
		})
	}
}

// BenchmarkChurnSweep measures one reduced churn-failover sweep on the
// shipped flap scenario: per iteration, 2 replications × 2 schemes of
// the full scenario pipeline (topology build, bind, expansion, 150
// emulated seconds of flapping, failover measurement) on the parallel
// runner. scripts/bench.sh records it in BENCH_SCENARIO.json.
func BenchmarkChurnSweep(b *testing.B) {
	sc, err := scenario.Load("examples/scenarios/flaps.json")
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.ChurnConfig{
		Seed: 42, Runs: 2, ManageRoutes: true,
		Schemes: []core.Scheme{core.SchemeEMPoWER, core.SchemeSPWoCC},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ChurnFailover(sc, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChurnSweepSharded is the churn sweep on the multi-cluster
// scenario with the domain-sharded engine inside each replication: per
// iteration, 2 replications × 2 schemes of the full pipeline over four
// interference domains. Results are bit-identical across shard counts;
// the wall-clock gain needs GOMAXPROCS > 1.
func BenchmarkChurnSweepSharded(b *testing.B) {
	sc, err := scenario.Load("examples/scenarios/clusters.json")
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		cfg := experiments.ChurnConfig{
			Seed: 42, Runs: 2, ManageRoutes: true, Shards: shards,
			Schemes: []core.Scheme{core.SchemeEMPoWER, core.SchemeSPWoCC},
		}
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.ChurnFailover(sc, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "=" + strconv.Itoa(n)
}
